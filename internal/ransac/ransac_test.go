package ransac

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vsresil/internal/fault"
	"vsresil/internal/geom"
	"vsresil/internal/stats"
)

// makeCorrespondences generates n correspondences under transform h,
// with outlierFrac of them replaced by random junk and optional
// Gaussian noise on the inliers.
func makeCorrespondences(h geom.Homography, n int, outlierFrac, noise float64, seed uint64) (src, dst []geom.Pt) {
	rng := stats.NewRNG(seed)
	outliers := int(float64(n) * outlierFrac)
	for i := 0; i < n; i++ {
		p := geom.Pt{X: rng.Float64() * 320, Y: rng.Float64() * 240}
		q := h.Apply(p)
		if i < outliers {
			q = geom.Pt{X: rng.Float64() * 320, Y: rng.Float64() * 240}
		} else if noise > 0 {
			q.X += rng.NormFloat64() * noise
			q.Y += rng.NormFloat64() * noise
		}
		src = append(src, p)
		dst = append(dst, q)
	}
	return src, dst
}

func TestEstimateRecoversHomographyCleanData(t *testing.T) {
	want := geom.Translation(15, -8).Mul(geom.Rotation(0.1))
	src, dst := makeCorrespondences(want, 60, 0, 0, 1)
	res, err := Estimate(src, dst, DefaultConfig(ModelHomography), nil)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if len(res.Inliers) != 60 {
		t.Errorf("inliers = %d, want 60", len(res.Inliers))
	}
	p := geom.Pt{X: 100, Y: 100}
	got := res.H.Apply(p)
	exp := want.Apply(p)
	if got.Dist(exp) > 0.1 {
		t.Errorf("recovered transform maps %v to %v, want %v", p, got, exp)
	}
}

func TestEstimateRobustToOutliers(t *testing.T) {
	want := geom.Translation(5, 12)
	src, dst := makeCorrespondences(want, 80, 0.4, 0.5, 2)
	res, err := Estimate(src, dst, DefaultConfig(ModelHomography), nil)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	// At least the clean 60% should be inliers.
	if len(res.Inliers) < 40 {
		t.Errorf("inliers = %d, want >= 40", len(res.Inliers))
	}
	p := geom.Pt{X: 50, Y: 60}
	if res.H.Apply(p).Dist(want.Apply(p)) > 2 {
		t.Errorf("estimate off by %v px", res.H.Apply(p).Dist(want.Apply(p)))
	}
}

func TestEstimateAffineModel(t *testing.T) {
	aff := geom.Affine{1.1, 0.05, 7, -0.02, 0.95, -4}
	want := aff.Homography()
	src, dst := makeCorrespondences(want, 30, 0.2, 0.2, 3)
	res, err := Estimate(src, dst, DefaultConfig(ModelAffine), nil)
	if err != nil {
		t.Fatalf("Estimate affine: %v", err)
	}
	if res.H[6] != 0 || res.H[7] != 0 {
		t.Error("affine estimate has perspective terms")
	}
	p := geom.Pt{X: 200, Y: 100}
	if res.H.Apply(p).Dist(want.Apply(p)) > 1.5 {
		t.Errorf("affine estimate error %v", res.H.Apply(p).Dist(want.Apply(p)))
	}
}

func TestEstimateNoConsensusOnRandomData(t *testing.T) {
	rng := stats.NewRNG(5)
	var src, dst []geom.Pt
	for i := 0; i < 40; i++ {
		src = append(src, geom.Pt{X: rng.Float64() * 320, Y: rng.Float64() * 240})
		dst = append(dst, geom.Pt{X: rng.Float64() * 320, Y: rng.Float64() * 240})
	}
	cfg := DefaultConfig(ModelHomography)
	cfg.MinInliers = 15
	if _, err := Estimate(src, dst, cfg, nil); !errors.Is(err, ErrNoConsensus) {
		t.Errorf("expected ErrNoConsensus, got %v", err)
	}
}

func TestEstimateTooFewPoints(t *testing.T) {
	src := []geom.Pt{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}
	if _, err := Estimate(src, src, DefaultConfig(ModelHomography), nil); !errors.Is(err, ErrNoConsensus) {
		t.Errorf("expected ErrNoConsensus for 3 points, got %v", err)
	}
}

func TestEstimateMismatchedInput(t *testing.T) {
	src := []geom.Pt{{X: 0, Y: 0}}
	dst := []geom.Pt{{X: 0, Y: 0}, {X: 1, Y: 1}}
	if _, err := Estimate(src, dst, DefaultConfig(ModelHomography), nil); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

func TestEstimateDeterministicAcrossRuns(t *testing.T) {
	want := geom.Translation(3, 4).Mul(geom.Rotation(0.05))
	src, dst := makeCorrespondences(want, 50, 0.3, 0.3, 7)
	cfg := DefaultConfig(ModelHomography)
	cfg.Seed = 99
	a, err := Estimate(src, dst, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(src, dst, cfg, fault.New())
	if err != nil {
		t.Fatal(err)
	}
	if a.H != b.H || len(a.Inliers) != len(b.Inliers) {
		t.Error("instrumented run differs from bare run")
	}
}

func TestEstimateSeedChangesSampling(t *testing.T) {
	// With heavy outliers, different seeds may find different but
	// valid consensus sets. Just confirm both succeed; determinism per
	// seed is covered above.
	want := geom.Translation(3, 4)
	src, dst := makeCorrespondences(want, 60, 0.3, 0.2, 11)
	for _, seed := range []uint64{1, 2} {
		cfg := DefaultConfig(ModelHomography)
		cfg.Seed = seed
		if _, err := Estimate(src, dst, cfg, nil); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestEstimateMeanErrorSmallOnCleanData(t *testing.T) {
	want := geom.Translation(1, 1)
	src, dst := makeCorrespondences(want, 40, 0, 0, 13)
	res, err := Estimate(src, dst, DefaultConfig(ModelHomography), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Error > 0.01 {
		t.Errorf("mean inlier error %v on clean data", res.Error)
	}
}

func TestEstimateRefitImprovesNoisyFit(t *testing.T) {
	want := geom.Translation(9, -3)
	src, dst := makeCorrespondences(want, 100, 0.2, 0.8, 17)
	cfg := DefaultConfig(ModelHomography)
	withRefit, err := Estimate(src, dst, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableRefit = true
	withoutRefit, err := Estimate(src, dst, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(withRefit.Inliers) < len(withoutRefit.Inliers) {
		t.Errorf("refit lost inliers: %d vs %d", len(withRefit.Inliers), len(withoutRefit.Inliers))
	}
}

func TestModelString(t *testing.T) {
	if ModelHomography.String() == "" || ModelAffine.String() == "" || Model(7).String() == "" {
		t.Error("empty model string")
	}
}

func TestDrawSampleDistinct(t *testing.T) {
	rng := stats.NewRNG(1)
	var sample [4]int
	for trial := 0; trial < 100; trial++ {
		if !drawSample(rng, 10, 4, &sample) {
			t.Fatal("drawSample failed")
		}
		seen := map[int]bool{}
		for _, v := range sample {
			if v < 0 || v >= 10 || seen[v] {
				t.Fatalf("bad sample %v", sample)
			}
			seen[v] = true
		}
	}
	if drawSample(rng, 2, 4, &sample) {
		t.Error("drawSample should fail when n < k")
	}
}

// Property: the estimated model's inlier set is exactly the set of
// correspondences within the threshold.
func TestPropertyInlierSetConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		want := geom.Translation(4, 4)
		src, dst := makeCorrespondences(want, 40, 0.25, 0.3, seed)
		cfg := DefaultConfig(ModelHomography)
		cfg.Seed = seed
		res, err := Estimate(src, dst, cfg, nil)
		if err != nil {
			return true // no consensus is acceptable for some draws
		}
		inlierSet := map[int]bool{}
		for _, i := range res.Inliers {
			inlierSet[i] = true
		}
		th2 := cfg.InlierThreshold * cfg.InlierThreshold
		for i := range src {
			in := res.H.Apply(src[i]).Dist2(dst[i]) <= th2
			if in != inlierSet[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: recovered homography agrees with ground truth on the unit
// test grid for pure translations of any magnitude.
func TestPropertyRecoverTranslation(t *testing.T) {
	f := func(txRaw, tyRaw int16) bool {
		tx := float64(txRaw) / 256
		ty := float64(tyRaw) / 256
		want := geom.Translation(tx, ty)
		src, dst := makeCorrespondences(want, 30, 0, 0, uint64(txRaw)^uint64(tyRaw)<<16)
		res, err := Estimate(src, dst, DefaultConfig(ModelHomography), nil)
		if err != nil {
			return false
		}
		p := geom.Pt{X: 17, Y: 23}
		return res.H.Apply(p).Dist(want.Apply(p)) < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEstimateWithNaNPoints(t *testing.T) {
	// Corrupted float data (as a fault can produce) must not make the
	// estimator return a non-finite model.
	want := geom.Translation(2, 2)
	src, dst := makeCorrespondences(want, 30, 0, 0, 19)
	src[0] = geom.Pt{X: math.NaN(), Y: math.NaN()}
	res, err := Estimate(src, dst, DefaultConfig(ModelHomography), nil)
	if err != nil {
		return // rejection is fine
	}
	if !res.H.IsFinite() {
		t.Error("estimator returned non-finite model")
	}
}

func BenchmarkEstimateHomography(b *testing.B) {
	want := geom.Translation(15, -8).Mul(geom.Rotation(0.1))
	src, dst := makeCorrespondences(want, 200, 0.3, 0.5, 1)
	cfg := DefaultConfig(ModelHomography)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(src, dst, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
