// Package ransac implements RANdom SAmple Consensus (Fischler &
// Bolles) for estimating the homography — or, as the paper's fallback,
// the affine transform — between two matched key-point sets (§III-A).
//
// The sampling is driven by a deterministic seeded RNG so that the
// whole pipeline is replayable, which the fault-injection campaign
// requires (a golden run and a faulty run must differ only by the
// injected bit).
package ransac

import (
	"errors"
	"fmt"

	"vsresil/internal/fault"
	"vsresil/internal/geom"
	"vsresil/internal/probe"
	"vsresil/internal/stats"
)

// Model selects what RANSAC estimates.
type Model uint8

// Estimated model kinds.
const (
	// ModelHomography fits a full 8-DOF projective transform from
	// 4-point samples.
	ModelHomography Model = iota
	// ModelAffine fits a 6-DOF affine transform from 3-point samples —
	// the paper's fallback when too few matches exist for a
	// homography.
	ModelAffine
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelHomography:
		return "homography"
	case ModelAffine:
		return "affine"
	default:
		return "unknown"
	}
}

// minSamples returns the minimal correspondence count for the model.
func (m Model) minSamples() int {
	if m == ModelAffine {
		return 3
	}
	return 4
}

// Config parameterizes the estimator.
type Config struct {
	Model Model
	// Iterations is the number of random samples drawn (default 500).
	Iterations int
	// InlierThreshold is the max reprojection error in pixels for a
	// correspondence to count as an inlier (default 3).
	InlierThreshold float64
	// MinInliers is the minimum consensus size for a model to be
	// accepted (default minSamples+4).
	MinInliers int
	// Seed drives the deterministic sampler.
	Seed uint64
	// Refit re-estimates the model from the full inlier set of the
	// best sample (default behavior unless DisableRefit).
	DisableRefit bool
}

// DefaultConfig returns the pipeline defaults for the given model.
func DefaultConfig(model Model) Config {
	return Config{
		Model:           model,
		Iterations:      500,
		InlierThreshold: 3,
		MinInliers:      model.minSamples() + 4,
	}
}

// Result is an accepted model with its consensus set.
type Result struct {
	// H is the estimated transform (for ModelAffine it is the lifted
	// affine).
	H geom.Homography
	// Inliers indexes the correspondences within the threshold.
	Inliers []int
	// Error is the mean reprojection error over the inliers.
	Error float64
}

// ErrNoConsensus is returned when no sampled model reaches MinInliers
// — the pipeline reacts by falling back to affine or discarding the
// frame, exactly like the paper's algorithm.
var ErrNoConsensus = errors.New("ransac: no model reached the inlier threshold")

// Estimate fits the configured model to the correspondences src[i] ->
// dst[i]. s is any probe.Sink; pass probe.Nop{} for an uninstrumented
// run (nil is normalized).
func Estimate(src, dst []geom.Pt, cfg Config, s probe.Sink) (*Result, error) {
	if s = probe.OrNop(s); probe.IsNop(s) {
		return estimate(src, dst, cfg, probe.Nop{})
	}
	if m, ok := s.(*fault.Machine); ok {
		return estimate(src, dst, cfg, m)
	}
	return estimate(src, dst, cfg, s)
}

func estimate[S probe.Sink](src, dst []geom.Pt, cfg Config, m S) (*Result, error) {
	defer m.Enter(probe.RRANSAC)()
	if len(src) != len(dst) {
		return nil, fmt.Errorf("ransac: correspondence count mismatch %d vs %d", len(src), len(dst))
	}
	k := cfg.Model.minSamples()
	if cfg.Iterations <= 0 {
		cfg.Iterations = 500
	}
	if cfg.InlierThreshold <= 0 {
		cfg.InlierThreshold = 3
	}
	if cfg.MinInliers < k {
		cfg.MinInliers = k + 4
	}
	n := m.Cnt(len(src))
	if n < k || n < cfg.MinInliers {
		return nil, ErrNoConsensus
	}

	rng := stats.NewRNG(cfg.Seed)
	thresh2 := cfg.InlierThreshold * cfg.InlierThreshold

	bestCount := 0
	var bestH geom.Homography
	var sample [4]int

	iters := m.Cnt(cfg.Iterations)
	for it := 0; it < iters; it++ {
		if !drawSample(rng, n, k, &sample) {
			continue
		}
		h, ok := fitSample(src, dst, sample[:k], cfg.Model)
		if !ok {
			continue
		}
		count := 0
		m.Ops(probe.OpFloat, uint64(n*8))
		m.Ops(probe.OpBranch, uint64(n))
		for i := 0; i < n; i++ {
			p := h.Apply(src[m.Idx(i)])
			if p.Dist2(dst[i]) <= thresh2 {
				count++
			}
		}
		if count > bestCount {
			bestCount = count
			bestH = h
		}
	}
	if bestCount < cfg.MinInliers {
		return nil, ErrNoConsensus
	}

	// Collect the consensus set of the best model.
	inliers := collectInliers(bestH, src, dst, thresh2, n, m)

	// Refit on all inliers for accuracy, keeping the sample model if
	// the refit degenerates or loses consensus.
	h := bestH
	if !cfg.DisableRefit && len(inliers) > k {
		if refit, ok := fitIndices(src, dst, inliers, cfg.Model); ok {
			refitInliers := collectInliers(refit, src, dst, thresh2, n, m)
			if len(refitInliers) >= len(inliers) {
				h = refit
				inliers = refitInliers
			}
		}
	}

	var errSum float64
	for _, i := range inliers {
		errSum += h.Apply(src[i]).Dist(dst[i])
	}
	meanErr := m.F64(errSum / float64(len(inliers)))
	return &Result{H: h, Inliers: inliers, Error: meanErr}, nil
}

// drawSample fills sample[:k] with k distinct indices in [0, n).
func drawSample(rng *stats.RNG, n, k int, sample *[4]int) bool {
	if n < k {
		return false
	}
	for i := 0; i < k; i++ {
	retry:
		v := rng.Intn(n)
		for j := 0; j < i; j++ {
			if sample[j] == v {
				goto retry
			}
		}
		sample[i] = v
	}
	return true
}

// fitSample fits the model to the sampled correspondences, rejecting
// degenerate (collinear) samples.
func fitSample(src, dst []geom.Pt, idx []int, model Model) (geom.Homography, bool) {
	// Degeneracy check: any three sampled source points collinear.
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			for c := b + 1; c < len(idx); c++ {
				if geom.Collinear(src[idx[a]], src[idx[b]], src[idx[c]]) {
					return geom.Homography{}, false
				}
			}
		}
	}
	return fitIndices(src, dst, idx, model)
}

// fitIndices fits the model to the given correspondence indices.
func fitIndices(src, dst []geom.Pt, idx []int, model Model) (geom.Homography, bool) {
	// The sampling loop calls this with 3- or 4-point samples hundreds
	// of times per Estimate; stack buffers cover those (and the small
	// refits) so only large refits allocate.
	var sbuf, dbuf [8]geom.Pt
	var s, d []geom.Pt
	if len(idx) <= len(sbuf) {
		s, d = sbuf[:len(idx)], dbuf[:len(idx)]
	} else {
		s = make([]geom.Pt, len(idx))
		d = make([]geom.Pt, len(idx))
	}
	for i, j := range idx {
		s[i] = src[j]
		d[i] = dst[j]
	}
	if model == ModelAffine {
		a, err := geom.EstimateAffine(s, d)
		if err != nil {
			return geom.Homography{}, false
		}
		return a.Homography(), true
	}
	h, err := geom.EstimateHomography(s, d)
	if err != nil {
		return geom.Homography{}, false
	}
	return h, true
}

// collectInliers returns the indices whose reprojection error is
// within the squared threshold.
func collectInliers[S probe.Sink](h geom.Homography, src, dst []geom.Pt, thresh2 float64, n int, m S) []int {
	inliers := make([]int, 0, n)
	for i := 0; i < n; i++ {
		p := h.Apply(src[i])
		d2 := m.F64(p.Dist2(dst[i]))
		if d2 <= thresh2 {
			inliers = append(inliers, i)
		}
	}
	return inliers
}
