// Tracking: the complete UAV summarization workflow of the paper's
// Fig 2 — coverage summarization (panorama) plus event summarization
// (moving-object tracks) integrated by overlaying the tracks on the
// panorama.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"

	"vsresil"
	"vsresil/internal/events"
	"vsresil/internal/probe"
	"vsresil/internal/stitch"
)

func main() {
	preset := vsresil.TestScale()
	preset.Frames = 16
	seq := vsresil.Input2(preset)
	seq.NoiseSigma = 2
	seq.AddMovingObjects(8, 42)

	frames := seq.Frames()
	st := stitch.New(stitch.DefaultConfig())
	res, err := st.Run(frames, probe.Nop{})
	if err != nil {
		log.Fatal(err)
	}
	prim := res.Primary()
	fmt.Printf("coverage summary: %dx%d panorama from %d frames\n",
		prim.Image.W, prim.Image.H, prim.Frames)

	sum, err := events.Summarize(frames, res,
		events.DefaultDetectConfig(), events.DefaultTrackConfig(), probe.Nop{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event summary: %d tracks\n", len(sum.Tracks))
	for _, tr := range sum.Tracks {
		first := tr.Points[0]
		last := tr.Points[len(tr.Points)-1]
		fmt.Printf("  track %d: %d observations, (%.0f,%.0f) -> (%.0f,%.0f)\n",
			tr.ID, len(tr.Points), first.X, first.Y, last.X, last.Y)
	}

	integrated := events.Overlay(prim.Image, prim.Bounds.MinX, prim.Bounds.MinY, sum.Tracks)
	if err := vsresil.SavePGM("tracking_summary.pgm", integrated); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote tracking_summary.pgm (panorama with track overlay)")
}
