// Quickstart: generate a short synthetic aerial video, run the precise
// VS algorithm on it, and save the resulting panorama.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"vsresil"
)

func main() {
	// A small smooth input (the paper's "Input 2" style): 20 frames
	// from a slowly sweeping camera.
	preset := vsresil.TestScale()
	preset.Frames = 20
	seq := vsresil.Input2(preset)

	// Run the precise baseline algorithm fault-free.
	res, err := vsresil.RunStudy(context.Background(), vsresil.StudyConfig{
		Input:     seq,
		Algorithm: vsresil.AlgVS,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	pano := res.GoldenImage
	fmt.Printf("stitched %d frames into a %dx%d panorama (%d mini-panoramas)\n",
		seq.Len(), pano.W, pano.H, len(res.Golden.Panoramas))
	fmt.Printf("modelled run: %d instructions, IPC %.2f, energy %.2f J\n",
		res.Metrics.Instructions, res.Metrics.IPC, res.Metrics.EnergyJ)

	if err := vsresil.SavePGM("quickstart_panorama.pgm", pano); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart_panorama.pgm")
}
