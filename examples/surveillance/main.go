// Surveillance mission planning: compare the precise VS algorithm with
// its three approximations on both mission profiles (a fast-panning
// multi-target sweep and a slow corridor sweep), reporting the
// energy/time savings and the output-quality cost of each knob — the
// trade-off a UAV operator would tune before a mission (paper §IV-A).
//
//	go run ./examples/surveillance
package main

import (
	"context"
	"fmt"
	"log"

	"vsresil"
	"vsresil/internal/energy"
	"vsresil/internal/quality"
)

func main() {
	preset := vsresil.TestScale()
	preset.Frames = 20

	for _, seq := range []*vsresil.Sequence{
		vsresil.Input1(preset),
		vsresil.Input2(preset),
	} {
		fmt.Printf("=== mission profile %s ===\n", seq.Name)

		// Baseline first: everything is reported relative to it.
		base, err := vsresil.RunStudy(context.Background(), vsresil.StudyConfig{
			Input: seq, Algorithm: vsresil.AlgVS, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8s %8s %10s  %s\n", "alg", "time", "energy", "output-ED", "panorama")

		for _, alg := range vsresil.Algorithms() {
			res, err := vsresil.RunStudy(context.Background(), vsresil.StudyConfig{
				Input: seq, Algorithm: alg, Seed: 7,
			})
			if err != nil {
				log.Fatal(err)
			}
			norm, err := energy.Normalize(res.Metrics, base.Metrics)
			if err != nil {
				log.Fatal(err)
			}
			// Quality cost of the approximation itself: the ED of its
			// golden output vs the precise golden output, compared in
			// shared panorama coordinates.
			bp := base.Golden.Primary()
			rp := res.Golden.Primary()
			ed := quality.ClassifyPlaced(bp.Image, rp.Image,
				bp.Bounds.MinX, bp.Bounds.MinY, rp.Bounds.MinX, rp.Bounds.MinY,
				quality.DefaultConfig())
			edStr := fmt.Sprintf("%d", ed.Degree)
			if ed.Egregious {
				edStr = "egregious"
			}
			fmt.Printf("%-8s %7.0f%% %7.0f%% %10s  %dx%d\n",
				alg, norm.Time*100, norm.Energy*100, edStr,
				res.GoldenImage.W, res.GoldenImage.H)
		}
		fmt.Println()
	}
	fmt.Println("Reading the table: time/energy are relative to the precise VS baseline")
	fmt.Println("(lower is better); output-ED is the approximation's quality cost under")
	fmt.Println("the paper's egregiousness metric (0 = identical output).")
}
