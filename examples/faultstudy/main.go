// Fault study: evaluate whether an approximation is safe to deploy on
// a radiation-exposed platform. Runs a fault-injection campaign
// against the baseline VS and the VS_RFD approximation, compares their
// resiliency profiles, and grades the silent data corruptions by
// Egregiousness Degree — the paper's end-to-end methodology in one
// program (§V, §VI).
//
//	go run ./examples/faultstudy
package main

import (
	"context"
	"fmt"
	"log"

	"vsresil"
)

func main() {
	preset := vsresil.TestScale()
	preset.Frames = 12
	seq := vsresil.Input1(preset)
	const trials = 300

	fmt.Printf("injecting %d single-bit GPR faults per variant on %s (%d frames)\n\n",
		trials, seq.Name, seq.Len())

	type report struct {
		alg   vsresil.Algorithm
		study *vsresil.StudyResult
	}
	var reports []report
	for _, alg := range []vsresil.Algorithm{vsresil.AlgVS, vsresil.AlgRFD} {
		res, err := vsresil.RunStudy(context.Background(), vsresil.StudyConfig{
			Input:             seq,
			Algorithm:         alg,
			Trials:            trials,
			Class:             vsresil.GPR,
			AnalyzeSDCQuality: true,
			Seed:              11,
		})
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, report{alg, res})
	}

	fmt.Printf("%-8s %8s %8s %8s %8s %14s\n",
		"alg", "Mask", "Crash", "SDC", "Hang", "SDCs w/ ED<=10")
	for _, r := range reports {
		rates := r.study.Rates()
		fmt.Printf("%-8s %8.3f %8.3f %8.3f %8.3f %13.0f%%\n",
			r.alg,
			rates[vsresil.OutcomeMask], rates[vsresil.OutcomeCrash],
			rates[vsresil.OutcomeSDC], rates[vsresil.OutcomeHang],
			100*r.study.TolerableSDCFraction(10))
	}

	fmt.Println()
	base, approx := reports[0].study, reports[1].study
	dSDC := approx.Rates()[vsresil.OutcomeSDC] - base.Rates()[vsresil.OutcomeSDC]
	fmt.Printf("VS_RFD changes the SDC rate by %+.1f points vs baseline.\n", dSDC*100)
	fmt.Println("If most of its SDCs sit at low ED (tolerable for surveillance imagery),")
	fmt.Println("the approximation is deployable without extra protection — the paper's")
	fmt.Println("conclusion: approximation gains need not cost resiliency.")
}
