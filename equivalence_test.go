// Campaign-level bit-exactness guards for the per-trial fast path and
// the probe.Sink instrumentation seam: the scanline warp kernel, the
// pooled trial arenas, the golden-run cache and the choice of sink
// (fault machine, Nop, Meter) must not change a single campaign
// observable — outcome counts, crash kinds, coverage histograms,
// golden bytes or any per-trial verdict — for a fixed seed.
package vsresil_test

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"vsresil/internal/fastpath"
	"vsresil/internal/fault"
	"vsresil/internal/imgproc"
	"vsresil/internal/probe"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// runGuardCampaign executes a fixed-seed campaign with the fast path
// toggled as requested.
func runGuardCampaign(t *testing.T, class fault.Class, fast bool, workers int, golden *fault.GoldenRun) *fault.Result {
	t.Helper()
	defer fastpath.SetEnabled(true)
	fastpath.SetEnabled(fast)

	p := virat.TestScale()
	p.Frames = 8
	frames := virat.Input2(p).Frames()
	app := vs.New(vs.DefaultConfig(vs.AlgVS), len(frames))
	res, err := fault.RunCampaign(context.Background(), fault.Config{
		Trials:  40,
		Class:   class,
		Region:  fault.RAny,
		Seed:    0x5EED5,
		Workers: workers,
		Golden:  golden,
	}, app.RunEncoded(frames))
	if err != nil {
		t.Fatalf("campaign (class=%v fast=%v workers=%d): %v", class, fast, workers, err)
	}
	return res
}

// requireIdentical compares every campaign observable of two results.
func requireIdentical(t *testing.T, label string, a, b *fault.Result) {
	t.Helper()
	if a.Counts != b.Counts {
		t.Errorf("%s: outcome counts differ: %v vs %v", label, a.Counts, b.Counts)
	}
	if !reflect.DeepEqual(a.CrashCounts, b.CrashCounts) {
		t.Errorf("%s: crash kinds differ: %v vs %v", label, a.CrashCounts, b.CrashCounts)
	}
	if !reflect.DeepEqual(a.RegHist.Counts, b.RegHist.Counts) {
		t.Errorf("%s: register histograms differ", label)
	}
	if !reflect.DeepEqual(a.BitHist.Counts, b.BitHist.Counts) {
		t.Errorf("%s: bit histograms differ", label)
	}
	if !bytes.Equal(a.GoldenOutput, b.GoldenOutput) {
		t.Errorf("%s: golden output bytes differ (%d vs %d bytes)", label, len(a.GoldenOutput), len(b.GoldenOutput))
	}
	if a.GoldenSteps != b.GoldenSteps {
		t.Errorf("%s: golden step counts differ: %d vs %d", label, a.GoldenSteps, b.GoldenSteps)
	}
	if a.TotalTaps != b.TotalTaps {
		t.Errorf("%s: tap-space sizes differ: %d vs %d", label, a.TotalTaps, b.TotalTaps)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("%s: trial counts differ: %d vs %d", label, len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		ta, tb := a.Trials[i], b.Trials[i]
		if ta.Outcome != tb.Outcome || ta.Crash != tb.Crash || ta.Landed != tb.Landed {
			t.Errorf("%s: trial %d differs: (%v,%v,landed=%v) vs (%v,%v,landed=%v)",
				label, i, ta.Outcome, ta.Crash, ta.Landed, tb.Outcome, tb.Crash, tb.Landed)
		}
	}
}

// TestCampaignFastpathEquivalence pins the whole per-trial fast path
// (scanline warp, pooled arenas, precomputed tables) to the reference
// semantics at campaign granularity, for both register classes.
func TestCampaignFastpathEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign equivalence sweep is not -short")
	}
	for _, class := range []fault.Class{fault.GPR, fault.FPR} {
		fast := runGuardCampaign(t, class, true, 1, nil)
		ref := runGuardCampaign(t, class, false, 1, nil)
		requireIdentical(t, "fastpath on vs off, class "+class.String(), fast, ref)
	}
}

// TestCampaignWorkerEquivalence checks that trial parallelism does not
// change results: pooled buffers migrating between worker goroutines
// must stay invisible.
func TestCampaignWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign equivalence sweep is not -short")
	}
	serial := runGuardCampaign(t, fault.GPR, true, 1, nil)
	parallel := runGuardCampaign(t, fault.GPR, true, runtime.GOMAXPROCS(0), nil)
	requireIdentical(t, "workers=1 vs GOMAXPROCS", serial, parallel)
}

// guardApp builds the fixed workload the sink-equivalence tests run.
func guardApp() (*vs.App, []*imgproc.Gray) {
	p := virat.TestScale()
	p.Frames = 8
	frames := virat.Input2(p).Frames()
	return vs.New(vs.DefaultConfig(vs.AlgVS), len(frames)), frames
}

// encodedRun executes one pipeline run through the given sink and
// returns the serialized panorama set.
func encodedRun(t *testing.T, s probe.Sink) []byte {
	t.Helper()
	app, frames := guardApp()
	res, err := app.Run(frames, s)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Encode()
}

// TestSinkOutputEquivalence pins the tap-ordering invariant's output
// half: the devirtualized Nop path, the observing Meter and a plan-free
// fault machine must all produce byte-identical panorama sets. The Nop
// comparison in particular covers the hand-inlined clean warp kernels
// against the instrumented reference loops.
func TestSinkOutputEquivalence(t *testing.T) {
	machine := encodedRun(t, fault.New())
	nop := encodedRun(t, probe.Nop{})
	meter := encodedRun(t, probe.NewMeter())
	nilSink := encodedRun(t, nil)
	if !bytes.Equal(machine, nop) {
		t.Errorf("plan-free machine vs Nop outputs differ (%d vs %d bytes)", len(machine), len(nop))
	}
	if !bytes.Equal(machine, meter) {
		t.Errorf("plan-free machine vs Meter outputs differ (%d vs %d bytes)", len(machine), len(meter))
	}
	if !bytes.Equal(nop, nilSink) {
		t.Errorf("Nop vs nil-sink outputs differ (%d vs %d bytes)", len(nop), len(nilSink))
	}
}

// TestSinkOutputEquivalenceNoFastpath repeats the sink comparison with
// the scanline fast path disabled, so the clean and instrumented
// variants of the reference warp kernels are pinned too.
func TestSinkOutputEquivalenceNoFastpath(t *testing.T) {
	defer fastpath.SetEnabled(true)
	fastpath.SetEnabled(false)
	machine := encodedRun(t, fault.New())
	nop := encodedRun(t, probe.Nop{})
	if !bytes.Equal(machine, nop) {
		t.Errorf("plan-free machine vs Nop outputs differ with fastpath off (%d vs %d bytes)", len(machine), len(nop))
	}
}

// TestCampaignOutcomeStreamEquivalence pins the injection half of the
// seam: two identically-seeded campaigns must deliver the identical
// ordered Mask/Crash/SDC/Hang outcome stream through OnTrial, and that
// stream must agree with the result's Trials slice. A refactor that
// perturbed tap ordering anywhere in the pipeline would shift fault
// sites and break this immediately.
func TestCampaignOutcomeStreamEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign equivalence sweep is not -short")
	}
	stream := func() ([]fault.TrialRecord, *fault.Result) {
		app, frames := guardApp()
		var recs []fault.TrialRecord
		res, err := fault.RunCampaign(context.Background(), fault.Config{
			Trials:  40,
			Class:   fault.GPR,
			Region:  fault.RAny,
			Seed:    0x5EED5,
			Workers: 1,
			OnTrial: func(rec fault.TrialRecord) { recs = append(recs, rec) },
		}, app.RunEncoded(frames))
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		return recs, res
	}
	recsA, resA := stream()
	recsB, resB := stream()
	requireIdentical(t, "outcome-stream run A vs run B", resA, resB)
	if len(recsA) != len(recsB) {
		t.Fatalf("stream lengths differ: %d vs %d", len(recsA), len(recsB))
	}
	for i := range recsA {
		if recsA[i].Outcome != recsB[i].Outcome || recsA[i].Crash != recsB[i].Crash {
			t.Errorf("stream trial %d differs: (%v,%v) vs (%v,%v)",
				i, recsA[i].Outcome, recsA[i].Crash, recsB[i].Outcome, recsB[i].Crash)
		}
	}
	for _, rec := range recsA {
		tr := resA.Trials[rec.Index]
		if tr.Outcome != rec.Outcome || tr.Crash != rec.Crash {
			t.Errorf("stream trial %d disagrees with Trials slice: (%v,%v) vs (%v,%v)",
				rec.Index, rec.Outcome, rec.Crash, tr.Outcome, tr.Crash)
		}
	}
}

// TestCampaignGoldenCacheEquivalence checks that supplying a
// precomputed golden run is indistinguishable from letting the
// campaign capture its own.
func TestCampaignGoldenCacheEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign equivalence sweep is not -short")
	}
	p := virat.TestScale()
	p.Frames = 8
	frames := virat.Input2(p).Frames()
	app := vs.New(vs.DefaultConfig(vs.AlgVS), len(frames))
	golden, err := fault.CaptureGolden(app.RunEncoded(frames))
	if err != nil {
		t.Fatalf("CaptureGolden: %v", err)
	}
	cached := runGuardCampaign(t, fault.GPR, true, 1, golden)
	fresh := runGuardCampaign(t, fault.GPR, true, 1, nil)
	requireIdentical(t, "precomputed vs self-captured golden", cached, fresh)
}
