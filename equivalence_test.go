// Campaign-level bit-exactness guards for the per-trial fast path:
// the scanline warp kernel, the pooled trial arenas and the golden-run
// cache must not change a single campaign observable — outcome counts,
// crash kinds, coverage histograms, golden bytes or any per-trial
// verdict — for a fixed seed.
package vsresil_test

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"vsresil/internal/fastpath"
	"vsresil/internal/fault"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// runGuardCampaign executes a fixed-seed campaign with the fast path
// toggled as requested.
func runGuardCampaign(t *testing.T, class fault.Class, fast bool, workers int, golden *fault.GoldenRun) *fault.Result {
	t.Helper()
	defer fastpath.SetEnabled(true)
	fastpath.SetEnabled(fast)

	p := virat.TestScale()
	p.Frames = 8
	frames := virat.Input2(p).Frames()
	app := vs.New(vs.DefaultConfig(vs.AlgVS), len(frames))
	res, err := fault.RunCampaign(context.Background(), fault.Config{
		Trials:  40,
		Class:   class,
		Region:  fault.RAny,
		Seed:    0x5EED5,
		Workers: workers,
		Golden:  golden,
	}, app.RunEncoded(frames))
	if err != nil {
		t.Fatalf("campaign (class=%v fast=%v workers=%d): %v", class, fast, workers, err)
	}
	return res
}

// requireIdentical compares every campaign observable of two results.
func requireIdentical(t *testing.T, label string, a, b *fault.Result) {
	t.Helper()
	if a.Counts != b.Counts {
		t.Errorf("%s: outcome counts differ: %v vs %v", label, a.Counts, b.Counts)
	}
	if !reflect.DeepEqual(a.CrashCounts, b.CrashCounts) {
		t.Errorf("%s: crash kinds differ: %v vs %v", label, a.CrashCounts, b.CrashCounts)
	}
	if !reflect.DeepEqual(a.RegHist.Counts, b.RegHist.Counts) {
		t.Errorf("%s: register histograms differ", label)
	}
	if !reflect.DeepEqual(a.BitHist.Counts, b.BitHist.Counts) {
		t.Errorf("%s: bit histograms differ", label)
	}
	if !bytes.Equal(a.GoldenOutput, b.GoldenOutput) {
		t.Errorf("%s: golden output bytes differ (%d vs %d bytes)", label, len(a.GoldenOutput), len(b.GoldenOutput))
	}
	if a.GoldenSteps != b.GoldenSteps {
		t.Errorf("%s: golden step counts differ: %d vs %d", label, a.GoldenSteps, b.GoldenSteps)
	}
	if a.TotalTaps != b.TotalTaps {
		t.Errorf("%s: tap-space sizes differ: %d vs %d", label, a.TotalTaps, b.TotalTaps)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("%s: trial counts differ: %d vs %d", label, len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		ta, tb := a.Trials[i], b.Trials[i]
		if ta.Outcome != tb.Outcome || ta.Crash != tb.Crash || ta.Landed != tb.Landed {
			t.Errorf("%s: trial %d differs: (%v,%v,landed=%v) vs (%v,%v,landed=%v)",
				label, i, ta.Outcome, ta.Crash, ta.Landed, tb.Outcome, tb.Crash, tb.Landed)
		}
	}
}

// TestCampaignFastpathEquivalence pins the whole per-trial fast path
// (scanline warp, pooled arenas, precomputed tables) to the reference
// semantics at campaign granularity, for both register classes.
func TestCampaignFastpathEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign equivalence sweep is not -short")
	}
	for _, class := range []fault.Class{fault.GPR, fault.FPR} {
		fast := runGuardCampaign(t, class, true, 1, nil)
		ref := runGuardCampaign(t, class, false, 1, nil)
		requireIdentical(t, "fastpath on vs off, class "+class.String(), fast, ref)
	}
}

// TestCampaignWorkerEquivalence checks that trial parallelism does not
// change results: pooled buffers migrating between worker goroutines
// must stay invisible.
func TestCampaignWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign equivalence sweep is not -short")
	}
	serial := runGuardCampaign(t, fault.GPR, true, 1, nil)
	parallel := runGuardCampaign(t, fault.GPR, true, runtime.GOMAXPROCS(0), nil)
	requireIdentical(t, "workers=1 vs GOMAXPROCS", serial, parallel)
}

// TestCampaignGoldenCacheEquivalence checks that supplying a
// precomputed golden run is indistinguishable from letting the
// campaign capture its own.
func TestCampaignGoldenCacheEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign equivalence sweep is not -short")
	}
	p := virat.TestScale()
	p.Frames = 8
	frames := virat.Input2(p).Frames()
	app := vs.New(vs.DefaultConfig(vs.AlgVS), len(frames))
	golden, err := fault.CaptureGolden(app.RunEncoded(frames))
	if err != nil {
		t.Fatalf("CaptureGolden: %v", err)
	}
	cached := runGuardCampaign(t, fault.GPR, true, 1, golden)
	fresh := runGuardCampaign(t, fault.GPR, true, 1, nil)
	requireIdentical(t, "precomputed vs self-captured golden", cached, fresh)
}
