package vsresil_test

import (
	"context"
	"fmt"
	"log"

	"vsresil"
)

// Example demonstrates the minimal end-to-end flow: generate a
// synthetic aerial input, run the precise VS algorithm, and inspect
// the result.
func Example() {
	preset := vsresil.TestScale()
	preset.Frames = 6
	seq := vsresil.Input2(preset)

	res, err := vsresil.RunStudy(context.Background(), vsresil.StudyConfig{
		Input:     seq,
		Algorithm: vsresil.AlgVS,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("panoramas: %d\n", len(res.Golden.Panoramas))
	fmt.Printf("frames stitched: %d\n", res.Golden.Primary().Frames)
	// Output:
	// panoramas: 1
	// frames stitched: 6
}
