// Campaign-level bit-exactness guards for golden-prefix checkpointing:
// resuming a trial from the latest golden stage boundary before its
// injection site must not change a single campaign observable —
// outcome counts, crash split, coverage histograms, rate curve,
// retained SDC output bytes or any per-trial verdict — across fault
// classes, regions, worker counts and shard decompositions. The drift
// guard at the bottom pins the golden checkpoint geometry itself to
// the checkpoint schema version.
package vsresil_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"

	"vsresil/internal/campaign"
	"vsresil/internal/fastpath"
	"vsresil/internal/fault"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// skipGuardSpec is the fixed campaign the prefix-skip guards run: the
// bench workload's input at a seed that produces a healthy mix of
// masks, crashes, SDCs and landed faults in 40 trials.
func skipGuardSpec(class fault.Class, region fault.Region, workers int) campaign.Spec {
	p := virat.TestScale()
	p.Frames = 8
	frames := virat.Input2(p).Frames()
	return campaign.Spec{
		Workload: campaign.VSApp(vs.DefaultConfig(vs.AlgVS), frames, "guard", ""),
		Class:    class,
		Region:   region,
		Trials:   40,
		Seed:     0x5EED5,
		Workers:  workers,
		SDC:      campaign.SDCPolicy{Keep: true},
	}
}

// requireIdenticalWithOutputs extends requireIdentical with the
// retained SDC output bytes, so a resumed trial that produced a
// subtly different corrupted panorama cannot slip through.
func requireIdenticalWithOutputs(t *testing.T, label string, a, b *fault.Result) {
	t.Helper()
	requireIdentical(t, label, a, b)
	for i := range a.Trials {
		if !bytes.Equal(a.Trials[i].Output, b.Trials[i].Output) {
			t.Errorf("%s: trial %d SDC output bytes differ", label, i)
		}
	}
}

// TestCampaignPrefixSkipEquivalence sweeps every fault class and
// region (whole-program plus each function scope that exposes taps)
// and checks that prefix skipping is bit-identical to full execution.
func TestCampaignPrefixSkipEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign equivalence sweep is not -short")
	}
	defer fastpath.SetPrefixSkip(true)
	var runner campaign.Runner
	regions := []fault.Region{fault.RAny}
	for r := fault.Region(0); r < fault.NumRegions; r++ {
		regions = append(regions, r)
	}
	for _, class := range []fault.Class{fault.GPR, fault.FPR} {
		for _, region := range regions {
			spec := skipGuardSpec(class, region, runtime.GOMAXPROCS(0))
			label := fmt.Sprintf("class=%v region=%v", class, region)

			fastpath.SetPrefixSkip(false)
			full, errFull := runner.Run(context.Background(), spec)
			fastpath.SetPrefixSkip(true)
			skipped, errSkip := runner.Run(context.Background(), spec)

			if errors.Is(errFull, fault.ErrNoTaps) && errors.Is(errSkip, fault.ErrNoTaps) {
				continue // this region has no sites for this class
			}
			if errFull != nil || errSkip != nil {
				t.Fatalf("%s: full err=%v skip err=%v", label, errFull, errSkip)
			}
			requireIdenticalWithOutputs(t, label, full.Fault, skipped.Fault)
		}
	}
}

// TestCampaignPrefixSkipWorkerEquivalence checks that skipping keeps
// the result independent of trial parallelism: checkpoint state shared
// across concurrently resuming workers must stay read-only.
func TestCampaignPrefixSkipWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign equivalence sweep is not -short")
	}
	defer fastpath.SetPrefixSkip(true)
	var runner campaign.Runner

	fastpath.SetPrefixSkip(true)
	serial, err := runner.Run(context.Background(), skipGuardSpec(fault.GPR, fault.RAny, 1))
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	parallel, err := runner.Run(context.Background(), skipGuardSpec(fault.GPR, fault.RAny, runtime.GOMAXPROCS(0)))
	if err != nil {
		t.Fatalf("workers=GOMAXPROCS: %v", err)
	}
	requireIdenticalWithOutputs(t, "skipping workers=1 vs GOMAXPROCS", serial.Fault, parallel.Fault)

	fastpath.SetPrefixSkip(false)
	full, err := runner.Run(context.Background(), skipGuardSpec(fault.GPR, fault.RAny, 1))
	if err != nil {
		t.Fatalf("full workers=1: %v", err)
	}
	requireIdenticalWithOutputs(t, "skipping vs full execution", serial.Fault, full.Fault)
}

// TestCampaignPrefixSkipShardEquivalence checks that every shard
// buckets its plan window against the shared checkpointed golden
// exactly as the unsharded full-execution campaign would.
func TestCampaignPrefixSkipShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign equivalence sweep is not -short")
	}
	defer fastpath.SetPrefixSkip(true)
	var runner campaign.Runner

	fastpath.SetPrefixSkip(false)
	base, err := runner.Run(context.Background(), skipGuardSpec(fault.GPR, fault.RAny, runtime.GOMAXPROCS(0)))
	if err != nil {
		t.Fatalf("unsharded full run: %v", err)
	}
	fastpath.SetPrefixSkip(true)
	for _, k := range []int{1, 2, 5} {
		merged, err := runner.RunSharded(context.Background(),
			skipGuardSpec(fault.GPR, fault.RAny, runtime.GOMAXPROCS(0)), k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		requireIdenticalWithOutputs(t, fmt.Sprintf("skipping shards k=%d vs full unsharded", k),
			base.Fault, merged.Fault)
	}
}

// TestCampaignBatchingEquivalenceMatrix is the bucket-scheduler bit-
// identity guard: for both fault classes it compares every combination
// of batching on/off × tiling on/off × workers {1,4} × shards {1,5}
// against the classic one-trial-at-a-time execution (batching and
// tiling both off, one worker, unsharded). Identical here means every
// campaign observable requireIdenticalWithOutputs checks, including
// the retained SDC output bytes — neither the checkpoint buckets, nor
// the early-mask/convergence cutoffs, nor the tiled inert kernels may
// shift a single trial's verdict.
func TestCampaignBatchingEquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign equivalence matrix is not -short")
	}
	defer func() {
		fastpath.SetBatching(true)
		fastpath.SetTiling(true)
	}()
	var runner campaign.Runner
	for _, class := range []fault.Class{fault.GPR, fault.FPR} {
		fastpath.SetBatching(false)
		fastpath.SetTiling(false)
		base, err := runner.Run(context.Background(), skipGuardSpec(class, fault.RAny, 1))
		if err != nil {
			t.Fatalf("class=%v baseline: %v", class, err)
		}
		for _, batching := range []bool{false, true} {
			for _, tiling := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					for _, shards := range []int{1, 5} {
						if !batching && !tiling && workers == 1 && shards == 1 {
							continue // that is the baseline itself
						}
						fastpath.SetBatching(batching)
						fastpath.SetTiling(tiling)
						label := fmt.Sprintf("class=%v batching=%v tiling=%v workers=%d shards=%d",
							class, batching, tiling, workers, shards)
						got, err := runner.RunSharded(context.Background(),
							skipGuardSpec(class, fault.RAny, workers), shards)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						requireIdenticalWithOutputs(t, label, base.Fault, got.Fault)
					}
				}
			}
		}
	}
}

// TestCampaignBatchingSchedStats sanity-checks the exported scheduler
// statistics: a batched run of the guard workload must actually bucket
// trials (the whole point of the scheduler) and report the restore
// arithmetic consistently, while a batching-off run must report none.
func TestCampaignBatchingSchedStats(t *testing.T) {
	defer fastpath.SetBatching(true)
	var runner campaign.Runner

	fastpath.SetBatching(true)
	batched, err := runner.Run(context.Background(), skipGuardSpec(fault.GPR, fault.RAny, 2))
	if err != nil {
		t.Fatalf("batched: %v", err)
	}
	s := batched.Fault.Sched
	if s.Buckets == 0 || s.Batched == 0 {
		t.Fatalf("batched run reported no buckets: %+v", s)
	}
	if s.RestoresSaved != s.Batched-s.Buckets {
		t.Errorf("RestoresSaved = %d, want Batched-Buckets = %d", s.RestoresSaved, s.Batched-s.Buckets)
	}
	if len(s.BucketSizes) != s.Buckets {
		t.Errorf("len(BucketSizes) = %d, want %d", len(s.BucketSizes), s.Buckets)
	}
	total := 0
	for _, n := range s.BucketSizes {
		total += n
	}
	if total != s.Batched {
		t.Errorf("sum(BucketSizes) = %d, want Batched = %d", total, s.Batched)
	}

	fastpath.SetBatching(false)
	classic, err := runner.Run(context.Background(), skipGuardSpec(fault.GPR, fault.RAny, 2))
	if err != nil {
		t.Fatalf("classic: %v", err)
	}
	if s := classic.Fault.Sched; s.Buckets != 0 || s.Batched != 0 || s.EarlyMasks != 0 || s.Converged != 0 {
		t.Errorf("batching-off run reported scheduler activity: %+v", s)
	}
}

// checkpointDigests pins, per checkpoint schema version, an FNV-1a
// digest of the guard workload's golden checkpoint stream (boundary
// names and per-class tap counters). If a pipeline change moves a
// stage boundary or the taps between boundaries, this digest changes —
// and the test demands a CheckpointSchema bump, which is what keeps
// stale cached/serialized goldens from being resumed under the new
// layout.
var checkpointDigests = map[int]uint64{
	1: 0x3cf855ea88b931ae,
}

// TestCheckpointSchemaDrift fails when the golden stage-boundary tap
// counts change without a CheckpointSchema bump.
func TestCheckpointSchemaDrift(t *testing.T) {
	spec := skipGuardSpec(fault.GPR, fault.RAny, 1)
	golden, err := fault.CaptureGoldenStaged(spec.Workload.Staged)
	if err != nil {
		t.Fatalf("CaptureGoldenStaged: %v", err)
	}
	if len(golden.Checkpoints) == 0 {
		t.Fatal("staged golden capture recorded no checkpoints")
	}
	h := fnv.New64a()
	for _, cp := range golden.Checkpoints {
		fmt.Fprintf(h, "%s:%d:%d:%d;", cp.Name, cp.Counters.GPR, cp.Counters.FPR, cp.Counters.Steps)
	}
	digest := h.Sum64()
	want, ok := checkpointDigests[fault.CheckpointSchema]
	if !ok {
		t.Fatalf("no pinned digest for CheckpointSchema %d: add %#x to checkpointDigests",
			fault.CheckpointSchema, digest)
	}
	if digest != want {
		t.Fatalf("golden checkpoint stream drifted (digest %#x, pinned %#x for schema %d): "+
			"bump fault.CheckpointSchema and pin the new digest",
			digest, want, fault.CheckpointSchema)
	}
}
