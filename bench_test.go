// Benchmarks regenerating the paper's evaluation, one per figure.
// These run each experiment harness at a reduced scale so `go test
// -bench` finishes in minutes; cmd/experiments exposes the same
// harnesses with larger scales.
package vsresil_test

import (
	"context"
	"testing"

	"vsresil/internal/campaign"
	"vsresil/internal/energy"
	"vsresil/internal/experiments"
	"vsresil/internal/fastpath"
	"vsresil/internal/fault"
	"vsresil/internal/probe"
	"vsresil/internal/stitch"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// benchOptions is the shared reduced scale for figure benchmarks.
func benchOptions() experiments.Options {
	p := virat.TestScale()
	p.Frames = 12
	return experiments.Options{Preset: p, Trials: 100, QualityTrials: 120, Seed: 1}
}

// BenchmarkFig5PerformanceEnergy regenerates the Fig 5 normalized
// IPC/time/energy comparison.
func BenchmarkFig5PerformanceEnergy(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Panoramas regenerates the Fig 6 output panoramas.
func BenchmarkFig6Panoramas(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Profile regenerates the Fig 8 execution profile.
func BenchmarkFig8Profile(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Coverage regenerates the Fig 9 coverage study (outcome
// rates vs injections, register histogram).
func BenchmarkFig9Coverage(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10ResiliencyProfile regenerates the Fig 10 GPR/FPR
// resiliency profile of the baseline VS.
func BenchmarkFig10ResiliencyProfile(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11aApproxResiliency regenerates the Fig 11a per-variant
// resiliency comparison.
func BenchmarkFig11aApproxResiliency(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11a(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11bHotFunction regenerates the Fig 11b WP-vs-VS
// hot-function case study.
func BenchmarkFig11bHotFunction(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11b(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12SDCQuality regenerates the Fig 12 ED distributions.
func BenchmarkFig12SDCQuality(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13OutputComparison regenerates the Fig 13 VS-vs-VS_SM
// comparison.
func BenchmarkFig13OutputComparison(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineBaseline measures one fault-free end-to-end run of
// the precise algorithm (the unit of work every campaign repeats) on
// the devirtualized probe.Nop fast path.
func BenchmarkPipelineBaseline(b *testing.B) {
	p := virat.TestScale()
	frames := virat.Input1(p).Frames()
	app := vs.New(vs.DefaultConfig(vs.AlgVS), len(frames))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Run(frames, probe.Nop{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineMetered measures the same run under the observing
// Meter sink — the cost of live per-stage telemetry, between the free
// Nop path and the full fault machine.
func BenchmarkPipelineMetered(b *testing.B) {
	p := virat.TestScale()
	frames := virat.Input1(p).Frames()
	app := vs.New(vs.DefaultConfig(vs.AlgVS), len(frames))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Run(frames, probe.NewMeter()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineInstrumented measures the same run under full fault
// instrumentation — the overhead of the tap layer.
func BenchmarkPipelineInstrumented(b *testing.B) {
	p := virat.TestScale()
	frames := virat.Input1(p).Frames()
	app := vs.New(vs.DefaultConfig(vs.AlgVS), len(frames))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Run(frames, fault.New()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignThroughput measures fault-injection trials per
// second on the smallest meaningful workload — the capacity-planning
// number for sizing vsd campaign jobs (also exported live at
// /metrics as vsd_trials_per_sec). It runs through the campaign
// engine's single-shard path, the exact code every production call
// site takes.
func BenchmarkCampaignThroughput(b *testing.B) {
	p := virat.TestScale()
	p.Frames = 8
	frames := virat.Input2(p).Frames()
	app := vs.New(vs.DefaultConfig(vs.AlgVS), len(frames))
	workload := campaign.NewStagedWorkload("bench", "", app.RunEncoded(frames), app.Staged(frames))
	const trialsPerCampaign = 20
	// The golden run is workload state, not campaign work: capture it
	// once up front (with stage checkpoints, so trials skip their
	// fault-free prefix), as the service and experiment harnesses do.
	golden, err := fault.CaptureGoldenStaged(workload.Staged)
	if err != nil {
		b.Fatal(err)
	}
	var runner campaign.Runner
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runner.RunSharded(context.Background(), campaign.Spec{
			Workload: workload, Class: fault.GPR, Region: fault.RAny,
			Trials: trialsPerCampaign, Seed: uint64(i),
			Golden: golden,
		}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Fault.Completed != trialsPerCampaign {
			b.Fatalf("campaign completed %d/%d trials", res.Fault.Completed, trialsPerCampaign)
		}
	}
	b.StopTimer()
	trials := float64(b.N) * trialsPerCampaign
	b.ReportMetric(trials/b.Elapsed().Seconds(), "trials/s")
}

// BenchmarkAdaptiveCampaign measures the confidence-driven planner
// end to end: golden capture amortized outside the timer, each
// iteration runs a full adaptive campaign at a loose target. Advisory
// only — the interesting number is trials/s alongside the savings the
// planner reports elsewhere.
func BenchmarkAdaptiveCampaign(b *testing.B) {
	p := virat.TestScale()
	p.Frames = 8
	frames := virat.Input2(p).Frames()
	app := vs.New(vs.DefaultConfig(vs.AlgVS), len(frames))
	workload := campaign.NewStagedWorkload("bench-adaptive", "", app.RunEncoded(frames), app.Staged(frames))
	golden, err := fault.CaptureGoldenStaged(workload.Staged)
	if err != nil {
		b.Fatal(err)
	}
	var runner campaign.Runner
	var trials int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runner.RunAdaptive(context.Background(), campaign.Spec{
			Workload: workload, Class: fault.GPR, Region: fault.RAny,
			Seed: uint64(i), Golden: golden,
			Adaptive: &campaign.AdaptiveSpec{Precision: 0.2, Confidence: 0.8},
		}, 1)
		if err != nil {
			b.Fatal(err)
		}
		trials += res.Executed
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
	}
}

// BenchmarkCompositeTiled measures the compositing stage alone — the
// pipeline's hottest kernel — with the banded tile kernels on and off,
// on the fault-free Nop path where tiling applies. The align state is
// built once outside the timer; each iteration renders the panoramas
// from scratch. Advisory only (see Makefile): single-core runners
// collapse both variants to one band.
func BenchmarkCompositeTiled(b *testing.B) {
	p := virat.BenchScale()
	p.Frames = 12
	frames := virat.Input2(p).Frames()
	st := stitch.New(stitch.DefaultConfig())
	feats := make([]stitch.FrameFeatures, len(frames))
	for i, f := range frames {
		feats[i] = st.DetectFrame(f, probe.Nop{})
	}
	a := st.BeginAlign(frames, probe.Nop{})
	for a.Next < len(frames) {
		st.AlignStep(feats, &a, probe.Nop{})
	}
	for _, tiled := range []bool{true, false} {
		name := "tiled"
		if !tiled {
			name = "rowwise"
		}
		b.Run(name, func(b *testing.B) {
			defer fastpath.SetTiling(true)
			fastpath.SetTiling(tiled)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Composite(frames, &a, probe.Nop{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBucketRestore measures what checkpoint-bucket batching buys
// on the campaign engine itself: the same 20-trial campaign executed
// with the bucket scheduler (one checkpoint restore per bucket, plus
// the suffix cutoffs it enables) versus classic per-trial restores.
// Advisory only — the headline gate stays BenchmarkCampaignThroughput.
func BenchmarkBucketRestore(b *testing.B) {
	p := virat.TestScale()
	p.Frames = 8
	frames := virat.Input2(p).Frames()
	app := vs.New(vs.DefaultConfig(vs.AlgVS), len(frames))
	workload := campaign.NewStagedWorkload("bench", "", app.RunEncoded(frames), app.Staged(frames))
	const trialsPerCampaign = 20
	golden, err := fault.CaptureGoldenStaged(workload.Staged)
	if err != nil {
		b.Fatal(err)
	}
	var runner campaign.Runner
	for _, batched := range []bool{true, false} {
		name := "batched"
		if !batched {
			name = "classic"
		}
		b.Run(name, func(b *testing.B) {
			defer fastpath.SetBatching(true)
			fastpath.SetBatching(batched)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := runner.RunSharded(context.Background(), campaign.Spec{
					Workload: workload, Class: fault.GPR, Region: fault.RAny,
					Trials: trialsPerCampaign, Seed: uint64(i),
					Golden: golden,
				}, 1)
				if err != nil {
					b.Fatal(err)
				}
				if res.Fault.Completed != trialsPerCampaign {
					b.Fatalf("campaign completed %d/%d trials", res.Fault.Completed, trialsPerCampaign)
				}
			}
		})
	}
}

// BenchmarkAblationBlendModes compares the two canvas blend modes'
// golden-run cost (the DESIGN.md compositing choice).
func BenchmarkAblationBlendModes(b *testing.B) {
	for _, alg := range vs.Algorithms() {
		b.Run(alg.String(), func(b *testing.B) {
			p := virat.TestScale()
			p.Frames = 8
			frames := virat.Input2(p).Frames()
			app := vs.New(vs.DefaultConfig(alg), len(frames))
			m := fault.New()
			if _, err := app.Run(frames, m); err != nil {
				b.Fatal(err)
			}
			met := energy.DefaultModel().Measure(m)
			b.ReportMetric(float64(met.Instructions), "modelled-instructions")
			for i := 0; i < b.N; i++ {
				if _, err := app.Run(frames, probe.Nop{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
