# Developer entry points. `make check` is the full gate the CI (and
# every PR) must pass: formatting, vet, build, and the test suite under
# the race detector.

GO ?= go

.PHONY: all check fmt vet build test race bench clean

all: check

check: fmt vet build race

# fmt fails if any file is not gofmt-clean (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment harnesses run reduced-scale campaigns that are still
# heavy under the race detector, so the race gate needs more than the
# default 10m package timeout.
race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
	rm -f vsd.journal
