# Developer entry points. `make check` is the full gate the CI (and
# every PR) must pass: formatting, vet, build, and the test suite under
# the race detector.

GO ?= go

.PHONY: all check fmt vet build test race identity determinism bench bench-json fabric-smoke clean

all: check

check: fmt vet build race identity determinism

# fmt fails if any file is not gofmt-clean (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment harnesses run reduced-scale campaigns that are still
# heavy under the race detector, so the race gate needs more than the
# default 10m package timeout.
race:
	$(GO) test -race -timeout 45m ./...

# identity pins the (identity scenario, vs summarizer) workload cell to
# the committed golden digest across every execution strategy — prefix
# skip, bucket batching, shard counts 1/2/5 and an in-process fabric
# cluster — plus the byte-identity tests at the generator, adapter and
# registry seams. Run it after touching any layer of the workload path.
identity:
	$(GO) test -count=1 -run 'TestIdentityCell|TestIdentityScenarioByteIdentical|TestVSAdapterByteIdentical|TestCellIdentityMatchesVSConstructor|TestVSConstructorKeyUnchanged' . ./internal/virat/ ./internal/summarize/ ./internal/campaign/

# determinism pins the adaptive planner's reproducibility promise: the
# confidence-driven trial set must be bit-identical across seeds,
# worker counts, round-shard counts, resume and a live cluster — and,
# since the executor went persistent, across session-window
# decompositions, mid-round cancellation/resume and lease-to-lease
# session reuse (the TestSession* equivalence suites). Run it after
# touching internal/plan or the adaptive execution paths.
determinism:
	$(GO) test -count=1 -run 'TestAdaptiveDeterministic|TestAdaptiveStratumStreamsIndependent|TestAdaptiveCampaignDeterministicAcrossExecution|TestAdaptiveCancellationMidRound|TestClusterAdaptive|TestCoordinatorRestartAdaptive|TestSession' ./internal/plan/ ./internal/campaign/ ./internal/fabric/ ./internal/fault/

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# fabric-smoke drives the in-process cluster: an HTTP coordinator, two
# live workers, one worker killed mid-campaign (lease expiry +
# reassignment), and a coordinator restart from its journal — all under
# the race detector. Fast enough to run before pushing fabric changes.
fabric-smoke:
	$(GO) test -race -count=1 -run 'TestCluster|TestCoordinatorRestart' ./internal/fabric/

# bench-json refreshes the "after" section of the committed benchmark
# ledger from the root-package perf benchmarks (the figure harness
# benchmarks are too slow to gate on) and prints per-metric deltas
# against the ledger's "before" section. The campaign-throughput and
# adaptive-campaign benchmarks gate (>10% regression fails); the
# micro-benchmarks stay advisory — they are too noisy to block on.
BENCH_JSON ?= BENCH_10.json
BENCH_GATE ?= BenchmarkCampaignThroughput|BenchmarkAdaptiveCampaign
bench-json:
	$(GO) test -run '^$$' -bench 'Pipeline|CampaignThroughput|AdaptiveCampaign|CompositeTiled|BucketRestore' -benchtime 3x . | tee bench.out
	$(GO) run ./cmd/benchdiff parse -label after -in bench.out -out $(BENCH_JSON)
	$(GO) run ./cmd/benchdiff compare -in $(BENCH_JSON) -gate '$(BENCH_GATE)' -threshold 0.10
	rm -f bench.out

clean:
	$(GO) clean ./...
	rm -f vsd.journal bench.out
