// Identity-workload equivalence suite: the (identity scenario, vs
// summarizer, VS) registry cell must produce byte-for-byte the golden
// output the repo has always produced, and fault campaigns over it
// must stay bit-identical across every execution strategy — the
// golden-prefix skip, the bucket scheduler, shard decompositions and a
// live fabric cluster. A pinned FNV-64a digest anchors the whole chain
// to one constant: any drift in the generator, the summarizer seam,
// the registry or an executor shows up as a digest mismatch here
// before it can silently re-baseline the paper's numbers.
package vsresil_test

import (
	"context"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vsresil/internal/campaign"
	"vsresil/internal/fabric"
	"vsresil/internal/fastpath"
	"vsresil/internal/fault"
	"vsresil/internal/plan"
	"vsresil/internal/virat"
	"vsresil/internal/vs"
)

// identityGoldenDigest pins the fault-free output of the identity cell
// on the 8-frame Input 2 test preset with app seed 0x5EED5 (FNV-64a of
// the encoded panorama set). Regenerate only for an intentional change
// to the generator or the VS pipeline.
const identityGoldenDigest = 0x8a7474734a0ab448

// identitySpec is the fixed fault campaign the equivalence runs share.
const (
	identityAppSeed  = 0x5EED5
	identityTrials   = 40
	identityInputNum = 2
)

// identityWorkload resolves the all-defaults registry cell on the
// suite's fixed preset. Rebuilt per campaign so no pipeline state is
// shared between runs.
func identityWorkload(t *testing.T) campaign.Workload {
	t.Helper()
	p := virat.TestScale()
	p.Frames = 8
	w, err := campaign.Cell{}.Workload(identityInputNum, p, identityAppSeed)
	if err != nil {
		t.Fatalf("identity cell workload: %v", err)
	}
	return w
}

func digestOf(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// TestIdentityCellPinnedDigest anchors the chain: the registry cell's
// golden output matches the pinned digest and the historical VS
// constructor byte-for-byte.
func TestIdentityCellPinnedDigest(t *testing.T) {
	w := identityWorkload(t)
	golden, err := fault.CaptureGolden(w.App)
	if err != nil {
		t.Fatalf("CaptureGolden: %v", err)
	}
	if d := digestOf(golden.Output); d != identityGoldenDigest {
		t.Errorf("identity cell golden digest = %#016x, want %#016x (%d bytes)",
			d, uint64(identityGoldenDigest), len(golden.Output))
	}

	p := virat.TestScale()
	p.Frames = 8
	old := campaign.VS(vs.AlgVS, virat.Input2(p), identityAppSeed)
	oldGolden, err := fault.CaptureGolden(old.App)
	if err != nil {
		t.Fatalf("CaptureGolden(historical): %v", err)
	}
	if d := digestOf(oldGolden.Output); d != identityGoldenDigest {
		t.Errorf("historical VS constructor digest = %#016x, want %#016x", d, uint64(identityGoldenDigest))
	}
	if w.Key != old.Key {
		t.Errorf("cache keys diverged: cell %q vs constructor %q", w.Key, old.Key)
	}
}

// runIdentityCampaign executes the fixed identity campaign with the
// requested shard count under the current fastpath switches.
func runIdentityCampaign(t *testing.T, shards int) *campaign.Result {
	t.Helper()
	var runner campaign.Runner
	res, err := runner.RunSharded(context.Background(), campaign.Spec{
		Workload: identityWorkload(t),
		Class:    fault.GPR,
		Region:   fault.RAny,
		Trials:   identityTrials,
		Seed:     identityAppSeed,
		Workers:  2,
	}, shards)
	if err != nil {
		t.Fatalf("identity campaign (shards=%d): %v", shards, err)
	}
	return res
}

// TestIdentityCellExecutionModeEquivalence sweeps the execution
// strategies — prefix-skip off, bucket batching off, shard counts 1, 2
// and 5 — and demands every one reproduce the baseline run bit for
// bit, golden bytes still matching the pinned digest.
func TestIdentityCellExecutionModeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("identity equivalence sweep is not -short")
	}
	defer func() {
		fastpath.SetPrefixSkip(true)
		fastpath.SetBatching(true)
	}()

	base := runIdentityCampaign(t, 1)
	if d := digestOf(base.Fault.GoldenOutput); d != identityGoldenDigest {
		t.Errorf("baseline campaign golden digest = %#016x, want %#016x", d, uint64(identityGoldenDigest))
	}

	fastpath.SetPrefixSkip(false)
	noSkip := runIdentityCampaign(t, 1)
	fastpath.SetPrefixSkip(true)

	fastpath.SetBatching(false)
	noBatch := runIdentityCampaign(t, 1)
	fastpath.SetBatching(true)

	requireIdentical(t, "prefix-skip off vs baseline", noSkip.Fault, base.Fault)
	requireIdentical(t, "batching off vs baseline", noBatch.Fault, base.Fault)
	for _, k := range []int{2, 5} {
		sharded := runIdentityCampaign(t, k)
		requireIdentical(t, "shards=1 vs sharded", base.Fault, sharded.Fault)
	}
}

// TestIdentityCellStaticPlannerEquivalence pins the planner seam: an
// explicit static-planner round executed through RunPlans must land on
// the identical trial set the ordinary Run path produces (which now
// routes through the same seam internally), golden bytes still on the
// pinned digest.
func TestIdentityCellStaticPlannerEquivalence(t *testing.T) {
	base := runIdentityCampaign(t, 1)

	w := identityWorkload(t)
	var runner campaign.Runner
	golden, err := runner.GoldenFor(w)
	if err != nil {
		t.Fatalf("GoldenFor: %v", err)
	}
	if d := digestOf(golden.Output); d != identityGoldenDigest {
		t.Errorf("planner golden digest = %#016x, want %#016x", d, uint64(identityGoldenDigest))
	}
	planner, err := plan.NewStatic(golden, plan.StaticConfig{
		Class:  fault.GPR,
		Region: fault.RAny,
		Seed:   identityAppSeed,
		Trials: identityTrials,
	})
	if err != nil {
		t.Fatalf("NewStatic: %v", err)
	}
	round, ok := planner.Next()
	if !ok {
		t.Fatal("static planner emitted no round")
	}
	res, err := runner.RunPlans(context.Background(), campaign.Spec{
		Workload: w,
		Class:    fault.GPR,
		Region:   fault.RAny,
		Seed:     identityAppSeed,
		Workers:  2,
	}, round.Plans, round.Lo)
	if err != nil {
		t.Fatalf("RunPlans: %v", err)
	}
	requireIdentical(t, "static planner round vs baseline", res.Fault, base.Fault)
}

// TestIdentityCellFabricEquivalence closes the loop over the wire: the
// same identity spec submitted to an in-process coordinator with two
// live HTTP workers merges bit-identically to the local run, golden
// bytes still on the pinned digest.
func TestIdentityCellFabricEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fabric identity equivalence is not -short")
	}
	cs := fabric.CampaignSpec{
		Class:   "gpr",
		Input:   identityInputNum,
		Scale:   "test",
		Frames:  8,
		Trials:  identityTrials,
		Seed:    identityAppSeed,
		Workers: 2,
	}
	base := runIdentityCampaign(t, 1)

	coord, err := fabric.NewCoordinator(fabric.Config{Workload: fabric.DefaultWorkload})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	mux := http.NewServeMux()
	coord.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := &fabric.Client{Base: srv.URL}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	id, err := client.Submit(ctx, cs, 2)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	for _, name := range []string{"live-1", "live-2"} {
		w := &fabric.Worker{
			ID:     name,
			Client: &fabric.Client{Base: srv.URL},
			Poll:   10 * time.Millisecond,
		}
		go w.Run(ctx)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := client.Status(ctx, id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" {
			t.Fatalf("cluster campaign failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster campaign did not finish in 60s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()

	merged, err := coord.Merged(id)
	if err != nil {
		t.Fatalf("merged result: %v", err)
	}
	requireIdentical(t, "fabric cluster vs local", base.Fault, merged.Fault)
	if d := digestOf(merged.Fault.GoldenOutput); d != identityGoldenDigest {
		t.Errorf("cluster golden digest = %#016x, want %#016x", d, uint64(identityGoldenDigest))
	}
}
